"""Tests for the request-level serving subsystem (`repro.serve`)."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigurationError
from repro.eval import format_serving_summary, serving_summary_rows
from repro.eval.reporting import SERVING_SUMMARY_COLUMNS
from repro.serve import (
    ArrivalTrace,
    BatchBuckets,
    ContinuousBatcher,
    RequestShape,
    RequestSpec,
    ServingScenario,
    ServingSimulator,
    SLOSpec,
    StepLatencyModel,
    available_scenarios,
    batch_trace,
    bursty_trace,
    compute_metrics,
    diurnal_trace,
    get_scenario,
    make_serving_session,
    percentile,
    poisson_trace,
    register_scenario,
    replay_trace,
    save_trace,
    scenario_descriptions,
    simulate_scenario,
    unregister_scenario,
)
from repro.serve.batching import RequestState, make_states
from repro.serve.metrics import RequestRecord


# --------------------------------------------------------------------------- #
# Shared fixtures: one serving session per module so bucketed step plans
# compile once across the tests that don't exercise cold-session behaviour.
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def serve_session():
    return make_serving_session()


def _llm(request_id, arrival, prefill=64, decode=4, model="tiny-llm"):
    return RequestSpec(
        request_id, arrival, model, prefill_tokens=prefill, decode_tokens=decode
    )


def _dit(request_id, arrival, steps=3, model="tiny-dit"):
    return RequestSpec(request_id, arrival, model, denoise_steps=steps)


# --------------------------------------------------------------------------- #
# Workloads and arrival traces
# --------------------------------------------------------------------------- #
def test_request_spec_validation():
    with pytest.raises(ConfigurationError):
        RequestSpec(0, -1.0, "tiny-llm", prefill_tokens=8, decode_tokens=8)
    with pytest.raises(ConfigurationError):
        RequestSpec(0, 0.0, "tiny-llm", prefill_tokens=8, decode_tokens=0)
    with pytest.raises(ConfigurationError):
        RequestSpec(0, 0.0, "tiny-dit", denoise_steps=4, decode_tokens=2)
    assert _llm(0, 0.0).kind == "llm"
    assert _dit(0, 0.0).kind == "diffusion"
    assert _dit(0, 0.0, steps=5).output_units == 5


def test_trace_must_be_in_arrival_order():
    with pytest.raises(ConfigurationError, match="arrival order"):
        ArrivalTrace("bad", (_llm(0, 1.0), _llm(1, 0.5)))


@pytest.mark.parametrize(
    "generator",
    [
        lambda seed: poisson_trace(50.0, 20, seed=seed),
        lambda seed: bursty_trace(200.0, 20, seed=seed),
        lambda seed: diurnal_trace(80.0, 20, seed=seed),
        lambda seed: batch_trace(20, seed=seed),
    ],
)
def test_generators_are_seed_deterministic(generator):
    first, second = generator(7), generator(7)
    assert first == second  # bit-identical arrivals AND request lengths
    assert len(first) == 20
    arrivals = [r.arrival_time for r in first]
    assert arrivals == sorted(arrivals)
    assert generator(8) != first


def test_batch_trace_arrives_at_time_zero():
    trace = batch_trace(5, seed=1)
    assert all(r.arrival_time == 0.0 for r in trace)


def test_mixture_shapes_sample_both_kinds():
    trace = poisson_trace(
        100.0,
        40,
        seed=3,
        shapes=(RequestShape(model="tiny-llm"), RequestShape(model="tiny-dit", denoise_steps=4)),
        weights=(1.0, 1.0),
    )
    kinds = {r.kind for r in trace}
    assert kinds == {"llm", "diffusion"}


def test_trace_replay_round_trip(tmp_path):
    trace = poisson_trace(40.0, 12, seed=5, name="round-trip")
    path = save_trace(trace, str(tmp_path / "trace.json"))
    assert replay_trace(path) == trace


def test_replay_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"schema_version": 999, "name": "x", "requests": []}')
    with pytest.raises(ConfigurationError, match="schema"):
        replay_trace(str(path))


def test_replay_missing_file_is_configuration_error(tmp_path):
    with pytest.raises(ConfigurationError, match="does not exist"):
        replay_trace(str(tmp_path / "nope.json"))


def test_replay_corrupt_json_is_configuration_error(tmp_path):
    path = tmp_path / "corrupt.json"
    path.write_text('{"schema_version": 1, "name": "x", "requests": [')
    with pytest.raises(ConfigurationError, match="not valid JSON"):
        replay_trace(str(path))


def test_replay_preserves_tenant_and_defaults_old_traces(tmp_path):
    trace = poisson_trace(
        40.0, 6, seed=5, shapes=RequestShape(tenant="acme"), name="tenants"
    )
    path = save_trace(trace, str(tmp_path / "trace.json"))
    assert {r.tenant for r in replay_trace(path)} == {"acme"}


def test_generator_argument_validation():
    with pytest.raises(ConfigurationError):
        poisson_trace(0.0, 4)
    with pytest.raises(ConfigurationError):
        poisson_trace(10.0, 4, weights=[1.0, 2.0])
    with pytest.raises(ConfigurationError):
        diurnal_trace(10.0, 4, floor_fraction=0.0)
    for generator in (poisson_trace, bursty_trace, diurnal_trace):
        with pytest.raises(ConfigurationError, match="non-negative"):
            generator(10.0, -1)
    with pytest.raises(ConfigurationError, match="non-negative"):
        batch_trace(-1)


# --------------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------------- #
def test_percentile_edge_cases():
    assert percentile([], 99) == 0.0
    assert percentile([4.0], 50) == 4.0
    assert percentile([4.0], 99) == 4.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5
    assert percentile([1.0, 2.0, 3.0, 4.0], 100) == 4.0
    with pytest.raises(ConfigurationError):
        percentile([1.0], 101)


def test_metrics_of_empty_record_set():
    metrics = compute_metrics([])
    assert metrics.num_requests == 0
    assert metrics.throughput_rps == 0.0
    assert metrics.ttft_p99 == 0.0
    assert metrics.goodput_fraction == 1.0  # vacuous without an SLO
    assert compute_metrics([], slo=SLOSpec(ttft=1.0)).goodput_fraction == 0.0


def test_metrics_of_single_record():
    record = RequestRecord(
        spec=_llm(0, 0.0, decode=1),
        arrival_time=0.0,
        started_time=0.5,
        first_token_time=1.0,
        completion_time=1.0,
    )
    metrics = compute_metrics([record], busy_time=0.5, slo=SLOSpec(ttft=2.0))
    assert record.ttft == record.e2e == 1.0
    assert record.tpot == 0.0  # single-token output has no decode phase
    assert metrics.ttft_p50 == metrics.ttft_p99 == 1.0
    assert metrics.goodput_fraction == 1.0
    tight = compute_metrics([record], slo=SLOSpec(ttft=0.5))
    assert tight.goodput_fraction == 0.0 and tight.goodput_rps == 0.0


def test_slo_components_enforced_independently():
    record = RequestRecord(
        spec=_llm(0, 0.0, decode=5),
        arrival_time=0.0,
        started_time=0.0,
        first_token_time=1.0,
        completion_time=3.0,
    )
    assert SLOSpec().met_by(record)
    assert SLOSpec(ttft=1.0, tpot=0.5, e2e=3.0).met_by(record)
    assert not SLOSpec(ttft=0.9).met_by(record)
    assert not SLOSpec(tpot=0.4).met_by(record)
    assert not SLOSpec(e2e=2.9).met_by(record)


# --------------------------------------------------------------------------- #
# Buckets and the continuous batcher
# --------------------------------------------------------------------------- #
def test_batch_buckets():
    buckets = BatchBuckets(batch_sizes=(1, 2, 4), context_buckets=(128, 512))
    assert buckets.batch_bucket(1) == 1
    assert buckets.batch_bucket(3) == 4
    assert buckets.batch_bucket(9) == 4  # clamped to the largest
    assert buckets.context_bucket(1) == 128
    assert buckets.context_bucket(200) == 512
    assert buckets.context_bucket(9999) == 512
    assert buckets.max_batch == 4
    with pytest.raises(ConfigurationError):
        buckets.batch_bucket(0)
    with pytest.raises(ConfigurationError):
        BatchBuckets(batch_sizes=(2, 1))
    with pytest.raises(ConfigurationError):
        BatchBuckets(context_buckets=())


def test_batcher_admission_cap_and_group_rotation():
    buckets = BatchBuckets(batch_sizes=(1, 2), context_buckets=(256,))
    batcher = ContinuousBatcher(buckets)
    specs = [
        _llm(0, 0.0, decode=1),
        _llm(1, 0.0, decode=1),
        _llm(2, 0.0, decode=1),
        _dit(3, 0.0),
    ]
    for state in make_states(specs):
        batcher.enqueue(state)

    first = batcher.form_batch(0.0)
    # FCFS: two tiny-llm requests admitted (cap 2), third waits; groups
    # rotate, so the second batch serves the DiT group.
    assert first.group == ("default", "tiny-llm", "llm")
    assert [s.spec.request_id for s in first.requests] == [0, 1]
    assert batcher.waiting == 1
    completed = batcher.complete_step(first, 1.0)
    assert {s.spec.request_id for s in completed} == {0, 1}
    second = batcher.form_batch(1.0)
    assert second.group == ("default", "tiny-dit", "diffusion")
    batcher.complete_step(second, 2.0)
    third = batcher.form_batch(2.0)
    # The freed slots admit the waiting request on the next llm turn.
    assert third.group == ("default", "tiny-llm", "llm")
    assert {s.spec.request_id for s in third.requests} == {2}


def test_prefill_chunks_respect_attention_budget():
    buckets = BatchBuckets(
        batch_sizes=(1, 2, 4),
        context_buckets=(256, 512),
        prefill_attention_budget=2 * 512 * 512,
    )
    batcher = ContinuousBatcher(buckets)
    states = make_states(
        [_llm(i, 0.0, prefill=400) for i in range(4)]  # bucket to 512 each
    )
    chunks = batcher._prefill_chunks(states)
    assert [len(chunk) for chunk in chunks] == [2, 2]
    for chunk in chunks:
        footprint = buckets.batch_bucket(len(chunk)) * 512 * 512
        assert footprint <= buckets.prefill_attention_budget
    # A single oversized prompt still gets its own chunk.
    lone = make_states([_llm(0, 0.0, prefill=2000)])
    assert [len(c) for c in batcher._prefill_chunks(lone)] == [1]


def test_started_time_marks_first_scheduled_iteration_not_admission():
    """A request admitted while another group holds the engine has not
    started: its per-step metrics must exclude the cross-group wait."""
    buckets = BatchBuckets(batch_sizes=(1, 2), context_buckets=(256,))
    batcher = ContinuousBatcher(buckets)
    llm_state, dit_state = make_states([_llm(0, 0.0, decode=1), _dit(1, 0.0)])
    batcher.enqueue(llm_state)
    batcher.enqueue(dit_state)
    first = batcher.form_batch(0.0)
    assert first.group == ("default", "tiny-llm", "llm")
    assert llm_state.started_time == 0.0
    assert dit_state.started_time is None  # admitted, but not yet scheduled
    batcher.complete_step(first, 1.5)
    second = batcher.form_batch(1.5)
    assert second.group == ("default", "tiny-dit", "diffusion")
    assert dit_state.started_time == 1.5


def test_request_state_progression():
    state = RequestState(spec=_llm(0, 0.0, prefill=100, decode=3))
    assert state.prefill_pending and state.context_tokens == 100
    state.steps_done = 2
    assert not state.prefill_pending and state.context_tokens == 102


# --------------------------------------------------------------------------- #
# Step-latency model: compile-once semantics through the shared session
# --------------------------------------------------------------------------- #
def test_step_latency_model_compiles_each_bucket_once(small_system, serve_session):
    model = StepLatencyModel(
        serve_session,
        small_system,
        "basic",
        buckets=BatchBuckets(batch_sizes=(1, 2), context_buckets=(256,)),
    )
    first = model.decode_latency("tiny-llm", 1, 100)
    again = model.decode_latency("tiny-llm", 1, 200)  # same buckets
    assert first == again and first > 0
    assert model.stats == {"compiles": 1, "hits": 1,
                           "compile_faults": 0, "fallbacks": 0}
    model.decode_latency("tiny-llm", 2, 100)  # new batch bucket
    assert model.stats["compiles"] == 2
    assert ("tiny-llm", "decode", 1, 256) in model.compiled_shapes()


def test_step_latency_model_rejects_non_dit_diffusion(small_system, serve_session):
    model = StepLatencyModel(serve_session, small_system, "basic")
    with pytest.raises(ConfigurationError, match="diffusion"):
        model.diffusion_latency("tiny-llm", 1)


def test_two_engines_share_session_compiles(small_system, serve_session):
    buckets = BatchBuckets(batch_sizes=(1,), context_buckets=(256,))
    first = StepLatencyModel(serve_session, small_system, "basic", buckets=buckets)
    second = StepLatencyModel(serve_session, small_system, "basic", buckets=buckets)
    a = first.prefill_latency("tiny-llm", 1, 64)
    hits_before = serve_session.stats.result_hits
    b = second.prefill_latency("tiny-llm", 1, 64)
    assert a == b
    # The second engine's lookup is a session-level cache hit, not a compile.
    assert serve_session.stats.result_hits == hits_before + 1


# --------------------------------------------------------------------------- #
# The discrete-event simulator
# --------------------------------------------------------------------------- #
def _engine(session, system, policy="basic", **kwargs):
    kwargs.setdefault(
        "buckets", BatchBuckets(batch_sizes=(1, 2, 4), context_buckets=(256,))
    )
    return ServingSimulator(StepLatencyModel(session, system, policy, **kwargs))


def test_empty_trace_serves_cleanly(small_system, serve_session):
    result = _engine(serve_session, small_system).run(ArrivalTrace("empty"))
    assert result.records == ()
    assert result.makespan == 0.0
    assert result.num_iterations == 0
    metrics = result.metrics()
    assert metrics.num_requests == 0 and metrics.throughput_rps == 0.0


def test_single_request_lifecycle(small_system, serve_session):
    trace = ArrivalTrace("one", (_llm(0, 0.5, prefill=32, decode=3),))
    result = _engine(serve_session, small_system).run(trace)
    assert len(result.records) == 1
    record = result.records[0]
    assert record.arrival_time == 0.5
    assert record.started_time == 0.5  # engine idle: admitted immediately
    assert 0.5 < record.first_token_time < record.completion_time
    assert result.num_iterations == 3  # prefill+first token, then 2 decodes
    metrics = result.metrics()
    assert metrics.num_requests == 1
    assert metrics.ttft_p50 == metrics.ttft_p99 == record.ttft
    assert metrics.output_tokens == 3


def test_every_request_completes_and_accounting_holds(small_system, serve_session):
    trace = poisson_trace(
        300.0,
        16,
        seed=2,
        shapes=RequestShape(model="tiny-llm", prefill_tokens=(16, 64), decode_tokens=(1, 6)),
    )
    result = _engine(serve_session, small_system).run(trace)
    assert len(result.records) == len(trace)
    assert {r.spec.request_id for r in result.records} == set(range(len(trace)))
    for record in result.records:
        assert record.arrival_time <= record.started_time <= record.first_token_time
        assert record.first_token_time <= record.completion_time
    metrics = result.metrics()
    assert metrics.output_tokens == sum(r.output_units for r in trace)
    assert 0.0 < metrics.utilization <= 1.0


def test_simultaneous_arrivals_share_the_first_iteration(small_system, serve_session):
    """Offline batches / burst heads arriving at one instant must be batched
    together, not served solo head-of-line."""
    specs = tuple(_llm(i, 0.0, prefill=32, decode=2) for i in range(4))
    result = _engine(serve_session, small_system).run(ArrivalTrace("t0", specs))
    assert all(record.started_time == 0.0 for record in result.records)
    # 4 requests x 2 tokens in full batches of 4: exactly 2 iterations.
    assert result.num_iterations == 2


def test_mixed_traffic_serves_both_groups(small_system, serve_session):
    specs = tuple(
        _llm(i, 0.0, prefill=32, decode=2) if i % 2 == 0 else _dit(i, 0.0, steps=2)
        for i in range(6)
    )
    result = _engine(serve_session, small_system).run(ArrivalTrace("mixed", specs))
    assert len(result.records) == 6
    kinds = {r.spec.kind for r in result.records}
    assert kinds == {"llm", "diffusion"}


def test_serving_run_is_bit_reproducible(small_system):
    """Identical seeds reproduce identical traces AND identical metrics."""
    outcomes = []
    for _ in range(2):  # fresh session each time: nothing carries over
        result = simulate_scenario(
            "interactive-chat",
            system=small_system,
            policy="basic",
            num_requests=10,
            seed=13,
            session=make_serving_session(),
        )
        outcomes.append(result)
    first, second = outcomes
    assert first.records == second.records  # bit-identical timestamps
    assert first.metrics() == second.metrics()
    assert first.num_iterations == second.num_iterations
    third = simulate_scenario(
        "interactive-chat",
        system=small_system,
        policy="basic",
        num_requests=10,
        seed=14,
        session=make_serving_session(),
    )
    assert third.records != first.records


# --------------------------------------------------------------------------- #
# Scenario registry
# --------------------------------------------------------------------------- #
def test_builtin_scenarios_registered():
    names = available_scenarios()
    assert len(names) >= 4
    for required in (
        "interactive-chat",
        "offline-batch",
        "diffusion-serving",
        "mixed-traffic",
    ):
        assert required in names
        scenario = get_scenario(required)
        assert isinstance(scenario, ServingScenario)
        assert scenario_descriptions()[required]


def test_scenario_traces_are_seeded():
    scenario = get_scenario("interactive-chat")
    assert scenario.trace(num_requests=8, seed=3) == scenario.trace(
        num_requests=8, seed=3
    )


def test_scenario_registration_lifecycle():
    @register_scenario("toy-scenario")
    class ToyScenario(ServingScenario):
        description = "test-only"

        def trace(self, num_requests=4, seed=0, rate_scale=1.0):
            return batch_trace(num_requests, seed=seed, name=self.name)

    try:
        assert "toy-scenario" in available_scenarios()
        with pytest.raises(ConfigurationError, match="already registered"):

            @register_scenario("toy-scenario")
            class Shadow(ServingScenario):
                def trace(self, num_requests=4, seed=0, rate_scale=1.0):
                    raise AssertionError

    finally:
        unregister_scenario("toy-scenario")
    assert "toy-scenario" not in available_scenarios()
    with pytest.raises(ConfigurationError, match="unknown scenario"):
        get_scenario("toy-scenario")
    with pytest.raises(ConfigurationError, match="ServingScenario"):
        register_scenario("not-a-scenario")(object)


# --------------------------------------------------------------------------- #
# Reporting integration
# --------------------------------------------------------------------------- #
def test_serving_summary_formatting(small_system, serve_session):
    trace = ArrivalTrace("one", (_llm(0, 0.0, prefill=32, decode=2),))
    result = _engine(serve_session, small_system).run(trace, slo=SLOSpec(ttft=10.0))
    runs = [({"scenario": "one", "policy": "basic", "rate_scale": 1.0}, result.metrics())]
    rows = serving_summary_rows(runs)
    assert rows[0]["scenario"] == "one"
    assert "goodput_rps" in rows[0]
    text = format_serving_summary(runs)
    assert "ttft_p50_ms" in text and "basic" in text
    assert format_serving_summary([]) == ""


# --------------------------------------------------------------------------- #
# Validation and concurrency regressions (PR 6)
# --------------------------------------------------------------------------- #
def test_negative_denoise_steps_rejected():
    with pytest.raises(ConfigurationError, match="non-negative"):
        RequestSpec(0, 0.0, "tiny-dit", denoise_steps=-1)
    # A negative count on the *shape* used to slip through as "an LLM shape"
    # and only blow up (or mislabel requests) at sampling time.
    with pytest.raises(ConfigurationError, match="non-negative"):
        RequestShape(model="tiny-dit", denoise_steps=-3)
    assert RequestShape(model="tiny-dit", denoise_steps=4).denoise_steps == 4


def test_metrics_summary_reports_p95_tails():
    records = [
        RequestRecord(
            spec=_llm(i, 0.0, decode=2),
            arrival_time=0.0,
            started_time=0.0,
            first_token_time=float(i + 1),
            completion_time=float(i + 2),
        )
        for i in range(10)
    ]
    metrics = compute_metrics(records)
    summary = metrics.summary()
    assert summary["ttft_p95_ms"] == pytest.approx(metrics.ttft_p95 * 1e3)
    assert summary["tpot_p95_ms"] == pytest.approx(metrics.tpot_p95 * 1e3)
    # p50 <= p95 <= p99 on a spread of distinct TTFTs.
    assert summary["ttft_p50_ms"] <= summary["ttft_p95_ms"] <= summary["ttft_p99_ms"]
    assert "ttft_p95_ms" in SERVING_SUMMARY_COLUMNS
    assert "tpot_p95_ms" in SERVING_SUMMARY_COLUMNS


def test_step_latency_model_race_compiles_once(small_system):
    """N threads racing to one uncached shape: one compile, N-1 hits."""
    session = make_serving_session()
    model = StepLatencyModel(
        session, small_system, policy="basic", use_simulator=False
    )
    num_threads = 4
    barrier = threading.Barrier(num_threads)
    original_compile = session.compile

    def stalling_compile(request):
        # Hold every thread inside the compute section until all of them
        # have passed the cached-read check, forcing the publish race.
        barrier.wait(timeout=30)
        return original_compile(request)

    session.compile = stalling_compile
    results: list[float | None] = [None] * num_threads
    errors: list[BaseException] = []

    def worker(index):
        try:
            results[index] = model.decode_latency("tiny-llm", 4, 128)
        except BaseException as error:  # pragma: no cover - diagnostic only
            errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(index,))
        for index in range(num_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not errors
    assert len(set(results)) == 1 and results[0] is not None
    assert model.stats == {"compiles": 1, "hits": num_threads - 1,
                           "compile_faults": 0, "fallbacks": 0}
    assert len(model.compiled_shapes()) == 1
