"""Tests for operator graphs and the graph builder."""

import pytest

from repro.errors import GraphError
from repro.ir import FP16, GraphBuilder, LayerSpan, OperatorGraph, TensorSpec, make_matmul


def _simple_chain(num_ops: int = 3) -> OperatorGraph:
    builder = GraphBuilder("chain")
    activation = TensorSpec("x0", (4, 32), FP16, "input")
    builder.begin_layer("layer0", template="chain_layer")
    for i in range(num_ops):
        weight = TensorSpec(f"w{i}", (32, 32), FP16, "weight")
        activation = builder.add(make_matmul(f"mm{i}", activation, weight)).output
    builder.end_layer()
    return builder.build()


def test_builder_produces_valid_graph():
    graph = _simple_chain()
    assert len(graph) == 3
    assert graph.layers[0].length == 3
    graph.validate()


def test_graph_rejects_duplicate_names():
    x = TensorSpec("x", (4, 32), FP16)
    w = TensorSpec("w", (32, 32), FP16, "weight")
    op = make_matmul("mm", x, w)
    with pytest.raises(GraphError):
        OperatorGraph("dup", [op, op])


def test_layer_spans_must_not_overlap():
    graph = _simple_chain()
    with pytest.raises(GraphError):
        OperatorGraph(
            "bad",
            graph.operators,
            layers=[LayerSpan("a", 0, 2), LayerSpan("b", 1, 3)],
        )


def test_validate_detects_backwards_dependency():
    graph = _simple_chain()
    reordered = OperatorGraph("bad", list(reversed(graph.operators)))
    with pytest.raises(GraphError):
        reordered.validate()


def test_index_and_operator_lookup(tiny_graph):
    first = tiny_graph.operators[0]
    assert tiny_graph.index_of(first.name) == 0
    assert tiny_graph.operator(first.name) is first
    with pytest.raises(GraphError):
        tiny_graph.index_of("no-such-op")


def test_hbm_heavy_selection_matches_threshold(tiny_graph):
    threshold = tiny_graph.hbm_heavy_threshold()
    heavy = tiny_graph.hbm_heavy_indices()
    assert heavy, "a transformer layer must contain HBM-heavy operators"
    for index in heavy:
        assert tiny_graph[index].hbm_load_bytes > threshold
    light = set(range(len(tiny_graph))) - set(heavy)
    for index in light:
        assert tiny_graph[index].hbm_load_bytes <= threshold


def test_identical_layer_groups(tiny_graph):
    groups = tiny_graph.identical_layer_groups()
    assert "decoder_layer" in groups
    assert len(groups["decoder_layer"]) == 2


def test_slice_preserves_contained_layers(tiny_graph):
    span = tiny_graph.layers[0]
    sliced = tiny_graph.slice(span.start, span.stop, name="one-layer")
    assert len(sliced) == span.length
    assert len(sliced.layers) == 1
    sliced.validate()


def test_serialization_round_trip(tiny_graph):
    restored = OperatorGraph.from_dict(tiny_graph.to_dict())
    assert restored.name == tiny_graph.name
    assert len(restored) == len(tiny_graph)
    assert restored.total_flops == tiny_graph.total_flops
    restored.validate()


def test_builder_rejects_unclosed_layers():
    builder = GraphBuilder("open")
    builder.begin_layer("layer0")
    x = TensorSpec("x", (4, 32), FP16)
    w = TensorSpec("w", (32, 32), FP16, "weight")
    builder.add(make_matmul("mm", x, w))
    with pytest.raises(GraphError):
        builder.begin_layer("layer1")
    builder.end_layer()
    assert builder.build().layers[0].name == "layer0"
