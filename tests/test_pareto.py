"""Tests (including property-based tests) for the Pareto-frontier utilities."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition.pareto import ParetoPoint, frontier_from_plans, next_smaller, pareto_frontier


def _points(pairs):
    return [ParetoPoint(memory_bytes=m, time_seconds=t, plan=(m, t)) for m, t in pairs]


def test_simple_frontier():
    points = _points([(100, 1.0), (80, 2.0), (60, 1.5), (40, 4.0)])
    frontier = pareto_frontier(points)
    kept = [(p.memory_bytes, p.time_seconds) for p in frontier]
    assert (60, 1.5) in kept  # dominates (80, 2.0)
    assert (80, 2.0) not in kept
    assert kept[0][0] >= kept[-1][0]


def test_frontier_orders_largest_memory_first():
    points = _points([(10, 5.0), (20, 3.0), (30, 1.0)])
    frontier = pareto_frontier(points)
    memories = [p.memory_bytes for p in frontier]
    assert memories == sorted(memories, reverse=True)


def test_next_smaller_walk():
    points = _points([(30, 1.0), (20, 2.0), (10, 3.0)])
    frontier = pareto_frontier(points)
    second = next_smaller(frontier, 0)
    assert second is not None and second.memory_bytes < frontier[0].memory_bytes
    assert next_smaller(frontier, len(frontier) - 1) is None


def test_frontier_from_plans_extractors():
    plans = [(100, 1.0), (50, 2.0), (50, 5.0)]
    frontier = frontier_from_plans(plans, memory_of=lambda p: p[0], time_of=lambda p: p[1])
    assert (50, 5.0) not in [p.plan for p in frontier]


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(1, 10_000), st.floats(0.001, 100.0)),
        min_size=1,
        max_size=40,
    )
)
def test_frontier_is_mutually_non_dominated(pairs):
    """Property: no frontier point dominates another, and every input point is
    dominated by (or equal to) some frontier point."""
    frontier = pareto_frontier(_points(pairs))
    assert frontier
    for i, a in enumerate(frontier):
        for j, b in enumerate(frontier):
            if i == j:
                continue
            dominates = (
                a.memory_bytes <= b.memory_bytes
                and a.time_seconds <= b.time_seconds
                and (a.memory_bytes < b.memory_bytes or a.time_seconds < b.time_seconds)
            )
            assert not dominates, "frontier contains a dominated point"
    for memory, timing in pairs:
        assert any(
            p.memory_bytes <= memory and p.time_seconds <= timing + 1e-12
            for p in frontier
        ), "an input point is not covered by the frontier"


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(1, 1000), st.floats(0.001, 10.0)),
        min_size=1,
        max_size=30,
    )
)
def test_frontier_time_is_monotone_in_memory(pairs):
    """Property: walking the frontier toward smaller memory never gets faster."""
    frontier = pareto_frontier(_points(pairs))
    times = [p.time_seconds for p in frontier]
    assert all(times[i] <= times[i + 1] + 1e-12 for i in range(len(times) - 1))
