"""Tests for the model zoo (Llama2, Gemma2, OPT, DiT builders and registry)."""

import pytest

from repro.errors import ConfigurationError
from repro.ir.models import (
    GEMMA2_27B,
    LLAMA2_13B,
    LLAMA2_70B,
    OPT_30B,
    PAPER_MODEL_NAMES,
    available_models,
    build_decode_graph,
    build_model,
    build_prefill_graph,
    get_config,
)


def test_registry_contains_all_paper_models():
    names = available_models()
    for model in PAPER_MODEL_NAMES:
        assert model in names
    assert get_config("llama2-13b") is LLAMA2_13B


def test_unknown_model_rejected():
    with pytest.raises(ConfigurationError):
        build_model("gpt-17t")


def test_gqa_configuration_flags():
    assert not LLAMA2_13B.uses_gqa
    assert LLAMA2_70B.uses_gqa
    assert GEMMA2_27B.uses_gqa
    assert not OPT_30B.gated_ffn
    assert OPT_30B.norm_type == "layer_norm"


def test_parameter_counts_are_in_published_ballpark():
    # Within 15% of the nominal parameter counts.
    assert LLAMA2_13B.approx_param_count == pytest.approx(13e9, rel=0.15)
    assert LLAMA2_70B.approx_param_count == pytest.approx(70e9, rel=0.15)
    assert OPT_30B.approx_param_count == pytest.approx(30e9, rel=0.15)
    assert GEMMA2_27B.approx_param_count == pytest.approx(27e9, rel=0.20)


def test_decode_graph_structure():
    graph = build_model("llama2-13b", batch_size=8, seq_len=512, num_layers=2)
    assert len(graph.layers) == 3  # 2 decoder layers + lm head
    decoder_layers = [s for s in graph.layers if s.template == "decoder_layer"]
    assert len(decoder_layers) == 2
    assert decoder_layers[0].length == decoder_layers[1].length
    graph.validate()


def test_decode_kv_cache_scales_with_sequence_length():
    short = build_model("llama2-13b", batch_size=8, seq_len=512, num_layers=1)
    long = build_model("llama2-13b", batch_size=8, seq_len=2048, num_layers=1)
    assert long.total_hbm_load_bytes > short.total_hbm_load_bytes


def test_gqa_reduces_kv_cache_volume():
    mha = build_model("tiny-llm", batch_size=8, seq_len=1024, num_layers=1)
    gqa = build_model("tiny-gqa", batch_size=8, seq_len=1024, num_layers=1)
    kv_mha = sum(op.usage.kv_cache_bytes for op in mha)
    kv_gqa = sum(op.usage.kv_cache_bytes for op in gqa)
    assert kv_gqa < kv_mha


def test_prefill_graph_is_compute_intensive():
    decode = build_decode_graph(LLAMA2_13B, batch_size=4, seq_len=1024, num_layers=1)
    prefill = build_prefill_graph(LLAMA2_13B, batch_size=4, seq_len=1024, num_layers=1)
    decode_intensity = decode.total_flops / decode.total_hbm_load_bytes
    prefill_intensity = prefill.total_flops / prefill.total_hbm_load_bytes
    assert prefill_intensity > 10 * decode_intensity


def test_dit_graph_has_no_kv_cache():
    graph = build_model("dit-xl", batch_size=4, num_layers=2)
    assert all(op.usage.kv_cache_bytes == 0 for op in graph)
    assert graph.total_flops > 0
    graph.validate()


def test_layer_override_bounds():
    with pytest.raises(ConfigurationError):
        build_model("llama2-13b", num_layers=0)
    with pytest.raises(ConfigurationError):
        build_model("llama2-13b", num_layers=LLAMA2_13B.num_layers + 1)


def test_weight_bytes_scale_with_layers():
    one = build_model("opt-30b", batch_size=4, seq_len=256, num_layers=1, include_lm_head=False)
    two = build_model("opt-30b", batch_size=4, seq_len=256, num_layers=2, include_lm_head=False)
    assert two.total_weight_bytes == pytest.approx(2 * one.total_weight_bytes, rel=0.01)
