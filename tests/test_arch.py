"""Tests for the architecture models (cores, interconnect, HBM, chips, systems)."""

import pytest

from repro.arch import (
    ALL_TO_ALL,
    MESH_2D,
    CoreConfig,
    HBMConfig,
    InterconnectConfig,
    SystemConfig,
    ipu_mk2_chip,
    ipu_pod4,
    mesh_pod4,
    scaled_system,
)
from repro.errors import ArchitectureError
from repro.units import GB, KiB, TB


def test_ipu_mk2_matches_published_numbers():
    chip = ipu_mk2_chip()
    assert chip.num_cores == 1472
    assert chip.core.sram_bytes == 624 * KiB
    # ~896 MB of on-chip SRAM and ~8 TB/s all-to-all bandwidth (§2.1).
    assert chip.total_sram_bytes == pytest.approx(896 * 1024 * KiB, rel=0.01)
    assert chip.interconnect_bandwidth == pytest.approx(8 * TB, rel=0.05)


def test_pod4_matches_paper_setup():
    system = ipu_pod4()
    assert system.num_chips == 4
    assert system.total_cores == 5888
    assert system.total_sram_bytes == pytest.approx(3.5 * 1024**3, rel=0.01)
    assert system.total_hbm_bandwidth == pytest.approx(16 * TB, rel=0.01)
    assert system.total_matmul_flops == pytest.approx(1000e12, rel=0.05)


def test_core_config_validation():
    with pytest.raises(ArchitectureError):
        CoreConfig(sram_bytes=0)
    with pytest.raises(ArchitectureError):
        CoreConfig(reserved_bytes=10**9)
    core = CoreConfig()
    assert core.usable_sram_bytes == core.sram_bytes - core.reserved_bytes
    assert core.flops_for(True) > core.flops_for(False)


def test_core_scaling():
    core = CoreConfig()
    doubled = core.scaled_flops(2.0)
    assert doubled.matmul_flops == pytest.approx(2 * core.matmul_flops)
    with pytest.raises(ArchitectureError):
        core.scaled_flops(0)


def test_interconnect_topologies():
    a2a = InterconnectConfig(topology=ALL_TO_ALL)
    mesh = InterconnectConfig(topology=MESH_2D)
    assert not a2a.is_mesh and mesh.is_mesh
    assert a2a.average_hops(64) == 1.0
    assert mesh.average_hops(64) > 1.0
    rows, cols = mesh.grid_shape(64)
    assert rows * cols == 64
    with pytest.raises(ArchitectureError):
        InterconnectConfig(topology="torus9d")


def test_mesh_aggregate_bandwidth_below_all_to_all():
    a2a = InterconnectConfig(topology=ALL_TO_ALL)
    mesh = InterconnectConfig(topology=MESH_2D)
    assert mesh.aggregate_bandwidth(256) < a2a.aggregate_bandwidth(256) * 4


def test_hbm_configuration():
    hbm = HBMConfig()
    assert hbm.total_bandwidth == pytest.approx(4 * 1e12)
    resized = hbm.with_total_bandwidth(2 * TB)
    assert resized.total_bandwidth == pytest.approx(2 * TB)
    with pytest.raises(ArchitectureError):
        HBMConfig(num_modules=0)


def test_chip_transforms():
    chip = ipu_mk2_chip()
    smaller = chip.with_num_cores(64)
    assert smaller.num_cores == 64
    assert smaller.total_sram_bytes < chip.total_sram_bytes
    more_hbm = chip.with_hbm_bandwidth(8 * TB)
    assert more_hbm.hbm_bandwidth == pytest.approx(8 * TB)


def test_system_transforms_preserve_invariants():
    system = ipu_pod4()
    doubled = system.with_total_hbm_bandwidth(32 * TB)
    assert doubled.total_hbm_bandwidth == pytest.approx(32 * TB)
    noc = system.with_total_interconnect_bandwidth(48 * TB)
    assert noc.total_interconnect_bandwidth == pytest.approx(48 * TB, rel=0.01)
    flops = system.with_matmul_tflops(500)
    assert flops.total_matmul_flops == pytest.approx(500e12, rel=0.01)


def test_mesh_pod4_and_scaled_presets():
    mesh = mesh_pod4()
    assert mesh.chip.interconnect.is_mesh
    scaled = scaled_system(num_cores=64)
    assert scaled.total_cores == 64
    # HBM scales at ~2.7 GB/s per core in the scaled preset.
    assert scaled.total_hbm_bandwidth == pytest.approx(2.7 * GB * 64, rel=0.01)


def test_system_validation():
    chip = ipu_mk2_chip()
    with pytest.raises(ArchitectureError):
        SystemConfig("bad", chip, num_chips=0)
    with pytest.raises(ArchitectureError):
        SystemConfig("bad", chip, num_chips=2, parallelism="pipeline")
