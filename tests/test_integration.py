"""Integration tests: full compile → simulate → emulate flows and the paper's
qualitative claims on a scaled configuration."""

import pytest

from repro.arch import ipu_pod4, mesh_pod4
from repro.codegen import DeviceRuntime, generate_device_program
from repro.compiler import ModelCompiler, WorkloadSpec
from repro.emu import EmulationFramework
from repro.eval import ExperimentConfig, compare_policies
from repro.sim import simulate_system
from repro.units import TB


@pytest.fixture(scope="module")
def llama_pod4_results():
    """All designs compiled for 2 layers of Llama2-13B on the POD4 system."""
    workload = WorkloadSpec("llama2-13b", batch_size=32, seq_len=2048, num_layers=2)
    compiler = ModelCompiler(workload, ipu_pod4())
    results = compiler.compile_all()
    simulated = {}
    for policy, result in results.items():
        if result.plan is None:
            simulated[policy] = result.latency
            continue
        sim = simulate_system(
            result.plan,
            compiler.system,
            compiler.frontend.per_chip_graph.total_flops,
            compiler.frontend.full_graph_flops,
            compiler.frontend.interchip_bytes_per_step,
        )
        simulated[policy] = sim.total_time
    return compiler, results, simulated


def test_design_ordering_matches_paper(llama_pod4_results):
    """Ideal <= Elk-Full <= Elk-Dyn-ish <= Static < Basic (Fig. 17 ordering)."""
    _, _, simulated = llama_pod4_results
    assert simulated["ideal"] <= simulated["elk-full"] * 1.001
    assert simulated["elk-full"] <= simulated["elk-dyn"] * 1.001
    assert simulated["elk-full"] <= simulated["static"] * 1.05
    assert simulated["elk-full"] < simulated["basic"]
    # Elk achieves a meaningful fraction of the roofline and clearly beats Basic.
    assert simulated["ideal"] / simulated["elk-full"] > 0.6
    assert simulated["basic"] / simulated["elk-full"] > 1.15


def test_hbm_utilization_ordering(llama_pod4_results):
    """HBM utilization improves from Basic to Static to Elk (Fig. 18b)."""
    compiler, results, _ = llama_pod4_results
    utils = {}
    for policy in ("basic", "static", "elk-full"):
        sim = simulate_system(
            results[policy].plan,
            compiler.system,
            compiler.frontend.per_chip_graph.total_flops,
            compiler.frontend.full_graph_flops,
            compiler.frontend.interchip_bytes_per_step,
        )
        utils[policy] = sim.chip_result.hbm_utilization
    assert utils["elk-full"] >= utils["static"] - 0.05
    assert utils["elk-full"] > utils["basic"]


def test_codegen_round_trip_for_all_policies(llama_pod4_results):
    _, results, _ = llama_pod4_results
    for policy in ("basic", "static", "elk-dyn", "elk-full"):
        plan = results[policy].plan
        program = generate_device_program(plan)
        runtime = DeviceRuntime(plan).run(program)
        assert runtime.total_time > 0


def test_emulator_agrees_with_plan_estimates(llama_pod4_results):
    compiler, results, _ = llama_pod4_results
    framework = EmulationFramework(compiler.system, noise=0.08)
    emulated = framework.emulate_system(
        results["elk-full"].plan,
        compiler.frontend.per_chip_graph,
        compiler.frontend.full_graph_flops,
        compiler.frontend.interchip_bytes_per_step,
    )
    planned = results["elk-full"].latency
    assert emulated.total_time == pytest.approx(planned, rel=0.6)


def test_mesh_topology_end_to_end():
    """The mesh NoC compiles and is no faster than all-to-all (Fig. 19)."""
    config = ExperimentConfig(
        num_layers=1, batch_size=16, seq_len=1024,
        policies=("elk-full",), max_order_candidates=4,
    )
    workload = WorkloadSpec("llama2-13b", batch_size=16, seq_len=1024, num_layers=1)
    a2a = compare_policies(workload, ipu_pod4(), config)[0]
    mesh = compare_policies(workload, mesh_pod4(), config)[0]
    assert a2a["latency_ms"] > 0 and mesh["latency_ms"] > 0
    assert mesh["latency_ms"] >= a2a["latency_ms"] * 0.9


def test_higher_hbm_bandwidth_helps_decode():
    """Raising HBM bandwidth reduces decode latency (Fig. 19 trend)."""
    config = ExperimentConfig(
        num_layers=1, batch_size=16, seq_len=1024,
        policies=("elk-full",), max_order_candidates=4,
    )
    workload = WorkloadSpec("llama2-13b", batch_size=16, seq_len=1024, num_layers=1)
    slow = compare_policies(workload, ipu_pod4(hbm_total_bandwidth=4 * TB), config)[0]
    fast = compare_policies(workload, ipu_pod4(hbm_total_bandwidth=16 * TB), config)[0]
    assert fast["latency_ms"] < slow["latency_ms"]


def test_gqa_model_loads_less_kv_cache_per_layer():
    """Gemma2-27B (GQA) reads far less KV cache per decoder layer than OPT-30B,
    which is why the larger GQA models decode as fast as smaller MHA models
    (the paper's note on Fig. 17)."""
    from repro.ir.models import build_model

    gemma = build_model(
        "gemma2-27b", batch_size=32, seq_len=2048, num_layers=1, include_lm_head=False
    )
    opt = build_model(
        "opt-30b", batch_size=32, seq_len=2048, num_layers=1, include_lm_head=False
    )
    gemma_kv = sum(op.usage.kv_cache_bytes for op in gemma)
    opt_kv = sum(op.usage.kv_cache_bytes for op in opt)
    assert gemma_kv < 0.5 * opt_kv
