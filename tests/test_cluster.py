"""Tests for repro.cluster: routers, tenancy, autoscaling, disaggregation.

The simulator-level tests use the analytic latency model
(``use_simulator=False``) on the small 32-core system so every test runs in
well under a second while still exercising real compiled step plans.
"""

import pytest

from repro.cluster import (
    AdmissionController,
    Autoscaler,
    AutoscalerConfig,
    ClusterSimulator,
    DisaggregationConfig,
    EngineView,
    RouterPolicy,
    TenantSpec,
    available_routers,
    get_router,
    register_router,
    simulate_cluster_scenario,
    unregister_router,
)
from repro.cluster.autoscaler import SCALE_ADD, SCALE_DRAIN, SCALE_REMOVE
from repro.errors import ConfigurationError
from repro.serve import (
    ArrivalTrace,
    BatchBuckets,
    RequestShape,
    RequestSpec,
    SLOSpec,
    StepLatencyModel,
    make_serving_session,
    poisson_trace,
)


@pytest.fixture(scope="module")
def cluster_session():
    return make_serving_session()


def _latency_model(session, system, **kwargs):
    kwargs.setdefault(
        "buckets", BatchBuckets(batch_sizes=(1, 2, 4), context_buckets=(256,))
    )
    kwargs.setdefault("use_simulator", False)
    return StepLatencyModel(session, system, "basic", **kwargs)


def _views(*loads):
    return [
        EngineView(engine_id=i, queue_depth=q, running=r, in_flight_tokens=t)
        for i, (q, r, t) in enumerate(loads)
    ]


def _state(tenant="default", request_id=0):
    from repro.serve.batching import make_states

    spec = RequestSpec(request_id, 0.0, "tiny-llm", 64, 8, tenant=tenant)
    return make_states([spec])[0]


# --------------------------------------------------------------------------- #
# Router policies and registry
# --------------------------------------------------------------------------- #
def test_builtin_routers_registered():
    assert {"round-robin", "least-loaded", "session-affinity"} <= set(
        available_routers()
    )


def test_router_registry_round_trip():
    @register_router("test-first")
    class First(RouterPolicy):
        description = "always the first engine"

        def choose(self, state, engines, now):
            return engines[0].engine_id

    try:
        assert get_router("test-first").choose(_state(), _views((0, 0, 0)), 0.0) == 0
        with pytest.raises(ConfigurationError, match="already registered"):
            register_router("test-first")(First)
    finally:
        unregister_router("test-first")
    with pytest.raises(ConfigurationError, match="unknown router"):
        get_router("test-first")


def test_round_robin_cycles_in_engine_order():
    router = get_router("round-robin")
    views = _views((0, 0, 0), (0, 0, 0), (0, 0, 0))
    picks = [router.choose(_state(), views, 0.0) for _ in range(6)]
    assert picks == [0, 1, 2, 0, 1, 2]


def test_least_loaded_prefers_fewest_requests_then_tokens_then_id():
    router = get_router("least-loaded")
    assert router.choose(_state(), _views((2, 1, 40), (0, 1, 40), (1, 1, 5)), 0.0) == 1
    # Equal load: fewer in-flight tokens wins.
    assert router.choose(_state(), _views((1, 0, 40), (1, 0, 5)), 0.0) == 1
    # Full tie: lowest engine id.
    assert router.choose(_state(), _views((1, 0, 5), (1, 0, 5)), 0.0) == 0


def test_session_affinity_is_sticky_and_spreads_tenants():
    router = get_router("session-affinity")
    views = _views(*(((0, 0, 0),) * 4))
    one = {router.choose(_state("acme", i), views, 0.0) for i in range(5)}
    assert len(one) == 1  # same tenant always lands on one engine
    spread = {
        router.choose(_state(tenant, 0), views, 0.0)
        for tenant in ("acme", "globex", "initech", "umbrella", "hooli")
    }
    assert len(spread) > 1  # different tenants do not all collapse together


@pytest.mark.parametrize("router", ["round-robin", "least-loaded", "session-affinity"])
def test_cluster_runs_are_deterministic_per_policy(
    small_system, cluster_session, router
):
    results = [
        simulate_cluster_scenario(
            "cluster-chat-fleet",
            system=small_system,
            policy="basic",
            num_requests=24,
            seed=7,
            session=cluster_session,
            use_simulator=False,
            router=router,
        )
        for _ in range(2)
    ]
    assert results[0].metrics() == results[1].metrics()
    assert [e.num_iterations for e in results[0].engines] == [
        e.num_iterations for e in results[1].engines
    ]
    assert results[0].router == router


# --------------------------------------------------------------------------- #
# Acceptance: a 4-engine fleet beats one engine, with zero duplicate compiles
# --------------------------------------------------------------------------- #
def test_fleet_beats_single_engine_p95_ttft_with_deduped_compiles(small_system):
    session = make_serving_session()
    kwargs = dict(
        system=small_system,
        policy="basic",
        num_requests=48,
        seed=0,
        session=session,
        use_simulator=False,
        router="least-loaded",
    )
    solo = simulate_cluster_scenario("cluster-chat-fleet", num_engines=1, **kwargs)
    fleet = simulate_cluster_scenario("cluster-chat-fleet", num_engines=4, **kwargs)
    assert fleet.metrics().ttft_p95 < solo.metrics().ttft_p95
    assert {len(solo.engines), len(fleet.engines)} == {1, 4}
    # Zero duplicate bucket compiles fleet-wide: every distinct compiled
    # shape was compiled exactly once through the shared session, no matter
    # how many engines (or runs) requested it.
    distinct_shapes = set(solo.compiled_shapes) | set(fleet.compiled_shapes)
    assert session.stats.compiles == len(distinct_shapes)


# --------------------------------------------------------------------------- #
# Autoscaler
# --------------------------------------------------------------------------- #
def test_autoscaler_config_validates_hysteresis_band():
    with pytest.raises(ConfigurationError, match="hysteresis"):
        AutoscalerConfig(scale_up_queue_depth=2.0, scale_down_queue_depth=2.0)
    with pytest.raises(ConfigurationError, match="max_engines"):
        AutoscalerConfig(min_engines=3, max_engines=2)


def test_autoscaler_cooldown_prevents_flapping():
    scaler = Autoscaler(
        AutoscalerConfig(
            min_engines=1,
            max_engines=4,
            scale_up_queue_depth=2.0,
            scale_down_queue_depth=0.5,
            cooldown=1.0,
        )
    )
    assert scaler.decide(0.0, active_engines=1, total_waiting=10) == "up"
    # An immediate reversal (queue emptied) must wait out the cooldown.
    assert scaler.decide(0.1, active_engines=2, total_waiting=0) is None
    assert scaler.decide(0.99, active_engines=2, total_waiting=0) is None
    assert scaler.decide(1.01, active_engines=2, total_waiting=0) == "down"
    # ...and the next decision waits for its own cooldown again.
    assert scaler.decide(1.5, active_engines=1, total_waiting=10) is None


def test_autoscaler_respects_fleet_bounds_and_attainment_floor():
    config = AutoscalerConfig(
        min_engines=1,
        max_engines=2,
        scale_up_queue_depth=2.0,
        scale_down_queue_depth=0.5,
        cooldown=0.0,
        attainment_floor=0.9,
        attainment_window=4,
    )
    scaler = Autoscaler(config)
    assert scaler.decide(0.0, active_engines=2, total_waiting=100) is None  # at max
    for met in (False, False, True, True):
        scaler.observe(met)
    assert scaler.attainment == 0.5
    # Missing the SLO floor scales up even with empty queues...
    assert scaler.decide(1.0, active_engines=1, total_waiting=0) == "up"
    # ...and blocks scale-down.
    assert scaler.decide(2.0, active_engines=2, total_waiting=0) is None


def test_autoscaled_fleet_scales_up_and_rebalances(small_system, cluster_session):
    result = simulate_cluster_scenario(
        "cluster-autoscale",
        system=small_system,
        policy="basic",
        num_requests=200,
        seed=2,
        rate_scale=4.0,
        session=cluster_session,
        use_simulator=False,
    )
    adds = [e for e in result.scale_events if e.action == SCALE_ADD]
    assert adds, "overload never triggered a scale-up"
    config = result.engines  # all engines, in id order
    assert len(config) <= 4  # bounded by max_engines
    # Rebalancing on warm-up: every scaled-up engine actually served work.
    for event in adds:
        record = result.engines[event.engine_id]
        assert record.num_iterations > 0
        assert record.ready_time == pytest.approx(event.time + 0.05)
    # No flapping: autoscaler actions respect the cooldown (remove events
    # are drain completions, not autoscaler decisions).
    actions = [e.time for e in result.scale_events if e.action != SCALE_REMOVE]
    assert all(b - a >= 0.1 for a, b in zip(actions, actions[1:]))
    assert result.metrics().num_requests == 200


def test_autoscaler_drains_idle_engine_and_work_completes(
    small_system, cluster_session
):
    # A thundering herd at t=0 forces a scale-up; the lone straggler half a
    # second later finds empty queues, an expired cooldown, and triggers the
    # drain -> remove path.
    herd = poisson_trace(
        5000.0,
        60,
        seed=4,
        shapes=RequestShape(model="tiny-llm", prefill_tokens=(64, 256), decode_tokens=(8, 48)),
    )
    stragglers = tuple(
        RequestSpec(len(herd) + i, 0.5 + 0.2 * i, "tiny-llm", 128, 8)
        for i in range(3)
    )
    trace = ArrivalTrace("herd-then-quiet", herd.requests + stragglers)
    model = _latency_model(cluster_session, small_system)
    result = ClusterSimulator(
        model,
        num_engines=1,
        autoscaler=AutoscalerConfig(
            min_engines=1,
            max_engines=3,
            scale_up_queue_depth=4.0,
            scale_down_queue_depth=0.5,
            cooldown=0.1,
            warmup_delay=0.01,
        ),
    ).run(trace)
    actions = [e.action for e in result.scale_events]
    assert SCALE_ADD in actions and SCALE_DRAIN in actions
    assert SCALE_REMOVE in actions  # the drained engine emptied and left
    drained = [e for e in result.engines if e.removed_time is not None]
    assert drained
    assert result.metrics().num_requests == len(trace)


def test_autoscaler_and_disaggregation_are_mutually_exclusive(
    small_system, cluster_session
):
    model = _latency_model(cluster_session, small_system)
    with pytest.raises(ConfigurationError, match="disaggregated"):
        ClusterSimulator(
            model,
            autoscaler=AutoscalerConfig(),
            disaggregation=DisaggregationConfig(),
        )


# --------------------------------------------------------------------------- #
# Tenancy: admission control and per-tenant metrics
# --------------------------------------------------------------------------- #
def test_token_bucket_admission_is_exact():
    controller = AdmissionController(
        [TenantSpec("metered", quota_rps=1.0, burst=1)]
    )
    assert controller.admit("metered", 0.0)  # bucket starts full
    assert not controller.admit("metered", 0.5)  # half a token refilled
    assert controller.admit("metered", 1.5)  # a full second passed
    assert controller.admit("unmetered", 0.0)  # unknown tenants are unlimited
    assert controller.admitted == {"metered": 2, "unmetered": 1}
    assert controller.rejected == {"metered": 1}


def test_tenant_specs_validate():
    with pytest.raises(ConfigurationError, match="quota_rps"):
        TenantSpec("x", quota_rps=0.0)
    with pytest.raises(ConfigurationError, match="burst"):
        TenantSpec("x", burst=0)
    with pytest.raises(ConfigurationError, match="duplicate"):
        AdmissionController([TenantSpec("x"), TenantSpec("x")])


def test_tenant_quota_enforced_in_cluster_run(small_system, cluster_session):
    trace = poisson_trace(
        400.0,
        40,
        seed=9,
        shapes=(
            RequestShape(model="tiny-llm", decode_tokens=(8, 16), tenant="greedy"),
            RequestShape(model="tiny-llm", decode_tokens=(8, 16), tenant="quiet"),
        ),
        weights=(3.0, 1.0),
    )
    model = _latency_model(cluster_session, small_system)
    result = ClusterSimulator(
        model,
        num_engines=2,
        tenants=[TenantSpec("greedy", quota_rps=20.0, burst=2)],
    ).run(trace)
    rejected = result.rejections_by_tenant()
    assert rejected and set(rejected) == {"greedy"}  # only the metered tenant
    served = {r.spec.request_id for r in result.records}
    assert len(served) + len(result.rejected) == len(trace)
    # Tenants never share a batch, and per-tenant metrics partition the run.
    per_tenant = result.tenant_metrics()
    assert sum(m.num_requests for m in per_tenant.values()) == len(served)
    assert set(per_tenant) == {"greedy", "quiet"}


def test_per_tenant_slo_goodput(small_system, cluster_session):
    model = _latency_model(cluster_session, small_system)
    trace = poisson_trace(
        100.0, 16, seed=3, shapes=RequestShape(model="tiny-llm", tenant="vip")
    )
    result = ClusterSimulator(
        model,
        num_engines=2,
        tenants=[TenantSpec("vip", slo=SLOSpec(ttft=1e9))],
    ).run(trace, slo=SLOSpec(ttft=1e-12))
    per_tenant = result.tenant_metrics()
    # The tenant's own (loose) SLO overrides the (impossible) run SLO.
    assert per_tenant["vip"].goodput_fraction == 1.0
    assert result.metrics().goodput_fraction == 0.0


# --------------------------------------------------------------------------- #
# Prefill/decode disaggregation
# --------------------------------------------------------------------------- #
def test_disaggregated_pools_split_the_work(small_system, cluster_session):
    result = simulate_cluster_scenario(
        "cluster-disaggregated",
        system=small_system,
        policy="basic",
        num_requests=32,
        seed=3,
        session=cluster_session,
        use_simulator=False,
    )
    roles = {e.role for e in result.engines}
    assert roles == {"prefill", "decode"}
    prefill = [e for e in result.engines if e.role == "prefill"]
    decode = [e for e in result.engines if e.role == "decode"]
    # Multi-token LLM requests always finish on the decode pool; the
    # prefill pool still executed iterations for every hand-off.
    assert all(e.num_iterations > 0 for e in prefill)
    assert sum(e.requests_completed for e in decode) == len(result.records)
    assert result.metrics().num_requests == 32


def test_disaggregation_with_idle_prefill_pool_keeps_ttft(
    small_system, cluster_session
):
    """At low load an idle dedicated prefill pool can't hurt TTFT."""
    kwargs = dict(
        system=small_system,
        policy="basic",
        num_requests=16,
        seed=11,
        rate_scale=0.05,  # sparse arrivals: every engine is idle on arrival
        session=cluster_session,
        use_simulator=False,
    )
    disagg = simulate_cluster_scenario("cluster-disaggregated", **kwargs)
    colocated = simulate_cluster_scenario(
        "cluster-disaggregated", disaggregation=None, num_engines=3, **kwargs
    )
    assert disagg.metrics().ttft_p95 <= colocated.metrics().ttft_p95 + 1e-12
    assert disagg.metrics().num_requests == colocated.metrics().num_requests


def test_handoff_delay_defers_decode(small_system, cluster_session):
    model = _latency_model(cluster_session, small_system)
    trace = poisson_trace(
        50.0, 8, seed=1, shapes=RequestShape(model="tiny-llm", decode_tokens=(4, 8))
    )
    fast = ClusterSimulator(
        model, disaggregation=DisaggregationConfig(handoff_delay=0.0)
    ).run(trace)
    slow = ClusterSimulator(
        model, disaggregation=DisaggregationConfig(handoff_delay=0.01)
    ).run(trace)
    # The hand-off tax lands on e2e latency, not on TTFT (first token is
    # produced by the prefill pool before the hand-off).
    assert slow.metrics().e2e_p50 > fast.metrics().e2e_p50
    assert slow.metrics().ttft_p50 == pytest.approx(fast.metrics().ttft_p50)


# --------------------------------------------------------------------------- #
# Result surface
# --------------------------------------------------------------------------- #
def test_cluster_metrics_summary_includes_queue_wait(small_system, cluster_session):
    result = simulate_cluster_scenario(
        "cluster-chat-fleet",
        system=small_system,
        policy="basic",
        num_requests=16,
        seed=5,
        session=cluster_session,
        use_simulator=False,
    )
    summary = result.metrics().summary()
    assert summary["queue_p50_ms"] <= summary["queue_p95_ms"]
    utilization = result.engine_utilization()
    assert all(0.0 <= value <= 1.0 for value in utilization.values())
