"""Tests for repro.obs: tracer semantics, deterministic export, registry."""

from __future__ import annotations

import json

import pytest

from repro.api import ArtifactStore
from repro.cluster import simulate_cluster_scenario
from repro.errors import ConfigurationError
from repro.obs import (
    MetricsRegistry,
    Tracer,
    to_chrome_trace,
    to_jsonl,
)
from repro.serve import make_serving_session, simulate_scenario

# --------------------------------------------------------------------------- #
# Tracer primitives.
# --------------------------------------------------------------------------- #


def test_span_nesting_depth_and_seq_containment():
    tracer = Tracer(clock=lambda: 0.0)
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
        with tracer.span("sibling") as extra:
            extra["late"] = 1
    spans = {span.name: span for span in tracer.spans()}
    outer, inner, sibling = spans["outer"], spans["inner"], spans["sibling"]
    assert outer.depth == 0 and inner.depth == 1 and sibling.depth == 1
    # Children open and close strictly inside the parent's sequence window.
    for child in (inner, sibling):
        assert outer.seq_start < child.seq_start < child.seq_end < outer.seq_end
    assert inner.seq_end < sibling.seq_start
    assert dict(sibling.attrs) == {"late": 1}
    # spans() sorts by sequence: parent (earliest open) first.
    assert [span.name for span in tracer.spans()] == ["outer", "inner", "sibling"]


def test_begin_end_first_publisher_wins_and_unopened_end_ignored():
    tracer = Tracer(clock=lambda: 0.0)
    tracer.begin(("r1", "queued"), "queued", sim_time=1.0, tenant="a")
    tracer.begin(("r1", "queued"), "queued", sim_time=5.0, tenant="b")  # ignored
    tracer.end(("r1", "queued"), 7.0)
    tracer.end(("never-opened",), 9.0)  # no-op
    (span,) = tracer.spans()
    assert span.sim_start == 1.0 and span.sim_end == 7.0
    assert dict(span.attrs) == {"tenant": "a"}


def test_abandoned_phase_is_never_emitted():
    tracer = Tracer(clock=lambda: 0.0)
    tracer.begin(("r1", "decode"), "decode", sim_time=1.0)
    assert len(tracer) == 0
    assert tracer.spans() == ()


def test_instants_and_add_span_record_sim_times():
    tracer = Tracer(clock=lambda: 2.5)
    tracer.add_span("iteration", 0.5, 0.75, track="engine/0", batch_size=4)
    tracer.instant("scale-add", sim_time=0.6, engine=1)
    tracer.instant("wall-marker")  # wall-clocked instant
    iteration, scale, marker = tracer.spans()
    assert iteration.sim_start == 0.5 and iteration.sim_end == 0.75
    assert scale.kind == "instant" and scale.seq_start == scale.seq_end
    assert marker.sim_start is None and marker.wall_start == 2.5


# --------------------------------------------------------------------------- #
# Exporters.
# --------------------------------------------------------------------------- #


def _tiny_trace() -> Tracer:
    ticks = iter(range(100))
    tracer = Tracer(clock=lambda: float(next(ticks)))
    with tracer.span("compile-stage", category="compile"):
        pass
    tracer.add_span("iteration", 0.001, 0.002, track="engine/0")
    tracer.instant("crash", sim_time=0.0015, category="cluster")
    return tracer


def test_chrome_trace_structure_and_metadata():
    data = json.loads(to_chrome_trace(_tiny_trace()))
    assert data["displayTimeUnit"] == "ms"
    events = data["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    assert {"process_name", "thread_name"} <= {e["name"] for e in meta}
    tracks = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
    assert tracks == {"compile", "engine/0", "cluster"}
    complete = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    assert len(complete) == 2 and len(instants) == 1
    assert instants[0]["s"] == "t"
    # Sim-clocked events are stamped in simulation microseconds.
    iteration = next(e for e in complete if e["name"] == "iteration")
    assert iteration["ts"] == pytest.approx(1000.0)
    assert iteration["dur"] == pytest.approx(1000.0)


def test_deterministic_export_quantizes_wall_times_out():
    tracer = _tiny_trace()
    stage = next(
        e
        for e in json.loads(to_chrome_trace(tracer))["traceEvents"]
        if e.get("name") == "compile-stage"
    )
    # Deterministic mode: wall spans get dimensionless sequence timestamps.
    assert stage["ts"] == 1.0 and stage["dur"] == 1.0
    for line in to_jsonl(tracer).splitlines():
        record = json.loads(line)
        assert "wall_start" not in record and "wall_end" not in record
    # Non-deterministic mode keeps (rebased) wall readings.
    honest = [json.loads(line) for line in to_jsonl(tracer, deterministic=False).splitlines()]
    assert any(record["wall_start"] is not None for record in honest)


def test_jsonl_round_trips_span_fields():
    records = [json.loads(line) for line in to_jsonl(_tiny_trace()).splitlines()]
    assert [r["name"] for r in records] == ["compile-stage", "iteration", "crash"]
    assert records[1]["track"] == "engine/0"
    assert records[2]["kind"] == "instant"


# --------------------------------------------------------------------------- #
# End-to-end determinism across the four layers.
# --------------------------------------------------------------------------- #


def _traced_chaos_run(store_root):
    tracer = Tracer()
    session = make_serving_session(store=ArtifactStore(str(store_root)))
    result = simulate_cluster_scenario(
        "cluster-chaos-crashes",
        policy="basic",
        num_requests=16,
        seed=5,
        session=session,
        use_simulator=False,
        tracer=tracer,
    )
    return tracer, result


def test_same_seed_cluster_trace_is_bit_identical(tmp_path):
    tracer_a, result_a = _traced_chaos_run(tmp_path / "a")
    tracer_b, result_b = _traced_chaos_run(tmp_path / "b")
    assert to_chrome_trace(tracer_a) == to_chrome_trace(tracer_b)
    assert to_jsonl(tracer_a) == to_jsonl(tracer_b)
    assert result_a.metrics() == result_b.metrics()

    # Spans from all four layers share the one timeline.
    categories = {span.category for span in tracer_a.spans()}
    assert {"compile", "store", "engine", "request", "cluster"} <= categories
    names = {span.name for span in tracer_a.spans()}
    assert {"frontend", "schedule", "codegen", "store.get", "store.put",
            "queued", "prefill", "decode", "done", "scale-crash"} <= names


def test_tracing_does_not_change_serving_metrics():
    baseline = simulate_scenario(
        "interactive-chat", policy="basic", num_requests=12, seed=3,
        use_simulator=False,
    )
    traced = simulate_scenario(
        "interactive-chat", policy="basic", num_requests=12, seed=3,
        use_simulator=False, tracer=Tracer(),
    )
    assert traced.metrics() == baseline.metrics()


def test_request_lifecycle_spans_cover_every_request():
    tracer = Tracer()
    result = simulate_scenario(
        "interactive-chat", policy="basic", num_requests=8, seed=1,
        use_simulator=False, tracer=tracer,
    )
    by_request: dict[str, set[str]] = {}
    for span in tracer.spans():
        if span.category == "request" and span.kind == "span":
            by_request.setdefault(span.track, set()).add(span.name)
    assert len(by_request) == len(result.records) == 8
    for phases in by_request.values():
        assert {"queued", "prefill", "decode"} <= phases


def test_scenario_run_restores_session_tracer():
    session = make_serving_session()
    simulate_scenario(
        "interactive-chat", policy="basic", num_requests=4, seed=0,
        session=session, use_simulator=False, tracer=Tracer(),
    )
    assert session.tracer is None


# --------------------------------------------------------------------------- #
# MetricsRegistry.
# --------------------------------------------------------------------------- #


def test_registry_instruments_and_snapshot():
    registry = MetricsRegistry()
    requests = registry.counter("requests")
    depth = registry.gauge("queue_depth")
    lat = registry.histogram("latency_ms")
    requests.inc()
    requests.inc(2)
    depth.set(7)
    for value in (1.0, 2.0, 3.0, 4.0):
        lat.observe(value)
    registry.register_source("store", lambda: {"hits": 5, "misses": 1})
    snapshot = registry.snapshot()
    assert snapshot["requests"] == 3
    assert snapshot["queue_depth"] == 7
    assert snapshot["latency_ms.count"] == 4
    assert snapshot["latency_ms.p50"] == pytest.approx(2.5)
    assert snapshot["store.hits"] == 5
    assert list(snapshot) == sorted(snapshot)
    table = registry.table()
    assert "latency_ms.p95" in table and "store.misses" in table


def test_registry_rejects_duplicate_names_across_kinds():
    registry = MetricsRegistry()
    registry.counter("x")
    for factory in (registry.counter, registry.gauge, registry.histogram):
        with pytest.raises(ConfigurationError):
            factory("x")
    with pytest.raises(ConfigurationError):
        registry.register_source("x", lambda: {})
    with pytest.raises(ConfigurationError):
        registry.counter("")


def test_counter_rejects_negative_increments():
    registry = MetricsRegistry()
    counter = registry.counter("n")
    with pytest.raises(ConfigurationError):
        counter.inc(-1)


def test_existing_structs_register_as_sources(tmp_path):
    tracer = Tracer()
    session = make_serving_session(store=ArtifactStore(str(tmp_path)))
    result = simulate_cluster_scenario(
        "cluster-chaos-crashes",
        policy="basic",
        num_requests=12,
        seed=2,
        session=session,
        use_simulator=False,
        tracer=tracer,
    )
    registry = MetricsRegistry()
    result.register_into(registry)
    session.stats.register_into(registry)
    session.store.stats.register_into(registry)
    snapshot = registry.snapshot()
    assert "cluster.serving.throughput_rps" in snapshot
    assert "cluster.availability.crashes" in snapshot
    assert "cluster.counters.requeues" in snapshot
    assert "session.compiles" in snapshot
    assert "store.hits" in snapshot
    assert snapshot["cluster.counters.retries"] == result.availability.num_retries
    # Double registration of one result is a configuration error, not a
    # silent shadow.
    with pytest.raises(ConfigurationError):
        result.register_into(registry)
